//! Sockets and symbolic links under the Laminar LSM: the remaining OS
//! resource kinds the paper names ("files and sockets") and the symlink
//! redirection attack its directory-integrity discussion targets.

use laminar_difc::{Label, LabelType, SecPair};
use laminar_os::{Kernel, LaminarModule, OpenMode, OsError, UserId};

fn boot() -> (std::sync::Arc<Kernel>, laminar_os::TaskHandle) {
    let k = Kernel::boot(LaminarModule);
    k.add_user(UserId(1), "alice");
    let t = k.login(UserId(1)).unwrap();
    (k, t)
}

#[test]
fn socketpair_carries_bidirectional_traffic() {
    let (_k, alice) = boot();
    let (a, b) = alice.socketpair().unwrap();
    assert_eq!(alice.write(a, b"ping").unwrap(), 4);
    assert_eq!(alice.read(b, 16).unwrap(), b"ping");
    assert_eq!(alice.write(b, b"pong").unwrap(), 4);
    assert_eq!(alice.read(a, 16).unwrap(), b"pong");
    // Directions are independent: nothing left to read either way.
    assert_eq!(alice.read(a, 16).unwrap(), b"");
    assert_eq!(alice.read(b, 16).unwrap(), b"");
}

#[test]
fn sockets_cross_process_via_fork() {
    let (_k, alice) = boot();
    let (a, b) = alice.socketpair().unwrap();
    let child = alice.fork(None).unwrap();
    child.write(b, b"from child").unwrap();
    assert_eq!(alice.read(a, 32).unwrap(), b"from child");
}

#[test]
fn socket_writes_silently_drop_on_illegal_flow() {
    let (_k, alice) = boot();
    let t = alice.alloc_tag().unwrap();
    let (a, b) = alice.socketpair().unwrap(); // unlabeled socket

    // Tainted writer: silently dropped, apparent success.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(t)).unwrap();
    assert_eq!(alice.write(a, b"secret").unwrap(), 6);
    alice.set_task_label(LabelType::Secrecy, Label::empty()).unwrap();
    assert_eq!(alice.read(b, 16).unwrap(), b"");
}

#[test]
fn labeled_socket_requires_taint_to_read() {
    let (_k, alice) = boot();
    let t = alice.alloc_tag().unwrap();
    // Create the socket while tainted: it carries {S(t)}.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(t)).unwrap();
    let (a, b) = alice.socketpair().unwrap();
    alice.write(a, b"classified").unwrap();
    // Untainted reader is refused.
    alice.set_task_label(LabelType::Secrecy, Label::empty()).unwrap();
    assert!(matches!(alice.read(b, 16), Err(OsError::FlowDenied(_))));
    // Tainted reader succeeds.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(t)).unwrap();
    assert_eq!(alice.read(b, 16).unwrap(), b"classified");
}

#[test]
fn symlinks_resolve_transparently() {
    let (_k, alice) = boot();
    let fd = alice.create("/tmp/real.txt").unwrap();
    alice.write(fd, b"payload").unwrap();
    alice.close(fd).unwrap();
    alice.symlink("/tmp/real.txt", "/tmp/alias").unwrap();

    let fd = alice.open("/tmp/alias", OpenMode::Read).unwrap();
    assert_eq!(alice.read(fd, 16).unwrap(), b"payload");
    alice.close(fd).unwrap();

    // readlink and lstat see the link itself; stat follows.
    assert_eq!(alice.readlink("/tmp/alias").unwrap(), "/tmp/real.txt");
    assert!(!alice.lstat("/tmp/alias").unwrap().is_dir);
    assert_eq!(
        alice.stat("/tmp/alias").unwrap().inode,
        alice.stat("/tmp/real.txt").unwrap().inode
    );
}

#[test]
fn relative_symlinks_resolve_from_their_directory() {
    let (_k, alice) = boot();
    alice.mkdir("/tmp/d").unwrap();
    let fd = alice.create("/tmp/d/real.txt").unwrap();
    alice.write(fd, b"x").unwrap();
    alice.close(fd).unwrap();
    alice.symlink("real.txt", "/tmp/d/rel").unwrap();
    let fd = alice.open("/tmp/d/rel", OpenMode::Read).unwrap();
    assert_eq!(alice.read(fd, 4).unwrap(), b"x");
}

#[test]
fn symlink_loops_are_detected() {
    let (_k, alice) = boot();
    alice.symlink("/tmp/l2", "/tmp/l1").unwrap();
    alice.symlink("/tmp/l1", "/tmp/l2").unwrap();
    // A cycle of symlinks surfaces as the typed ELOOP-style error, not a
    // generic invalid-argument (and certainly not an unwind).
    assert!(matches!(alice.open("/tmp/l1", OpenMode::Read), Err(OsError::SymlinkLoop)));
    assert!(matches!(alice.stat("/tmp/l1"), Err(OsError::SymlinkLoop)));
    // lstat does not follow the final component, so it still succeeds.
    assert!(alice.lstat("/tmp/l1").is_ok());
}

#[test]
fn integrity_task_cannot_be_redirected_through_unendorsed_symlink() {
    // The §5.2 symlink attack: an attacker plants a link redirecting a
    // high-integrity task to a file of the attacker's choosing. Because
    // following a link *reads* the link inode, the task's integrity
    // label vetoes the redirection.
    let (k, alice) = boot();
    let i = alice.alloc_tag().unwrap();
    let endorsed = SecPair::integrity_only(Label::singleton(i));

    // An endorsed config tree installed by the administrator.
    k.install_dir("/appcfg", endorsed.clone()).unwrap();
    k.install_file("/appcfg/conf", endorsed.clone(), b"trusted=1").unwrap();
    // The attacker (unlabeled) plants an unendorsed symlink in the tree…
    // …which he cannot even do inside the endorsed dir (write-up denied):
    assert!(alice.symlink("/tmp/evil", "/appcfg/conf2").is_err());

    // Suppose the link exists in an unlabeled staging dir instead:
    let fd = alice.create("/tmp/evil").unwrap();
    alice.write(fd, b"trusted=0").unwrap();
    alice.close(fd).unwrap();
    alice.symlink("/tmp/evil", "/tmp/conf").unwrap();

    // An integrity-i task reading via the attacker's link is refused at
    // the link itself (reading an unendorsed inode).
    alice.chdir("/tmp").unwrap();
    alice.set_task_label(LabelType::Integrity, Label::singleton(i)).unwrap();
    assert!(alice.open("conf", OpenMode::Read).is_err());

    // Via the endorsed tree it reads fine.
    alice.set_task_label(LabelType::Integrity, Label::empty()).unwrap();
    alice.chdir("/appcfg").unwrap();
    alice.set_task_label(LabelType::Integrity, Label::singleton(i)).unwrap();
    let fd = alice.open("conf", OpenMode::Read).unwrap();
    assert_eq!(alice.read(fd, 16).unwrap(), b"trusted=1");
}

#[test]
fn seek_repositions_regular_files_only() {
    let (_k, alice) = boot();
    let fd = alice.create("/tmp/f").unwrap();
    alice.write(fd, b"abcdef").unwrap();
    alice.seek(fd, 2).unwrap();
    assert_eq!(alice.read(fd, 2).unwrap(), b"cd");
    // Seek backwards and overwrite.
    alice.seek(fd, 0).unwrap();
    alice.write(fd, b"XY").unwrap();
    alice.seek(fd, 0).unwrap();
    assert_eq!(alice.read(fd, 6).unwrap(), b"XYcdef");

    let (r, _w) = alice.pipe().unwrap();
    assert!(matches!(alice.seek(r, 0), Err(OsError::BadFd)));
    let (a, _b) = alice.socketpair().unwrap();
    assert!(matches!(alice.seek(a, 0), Err(OsError::BadFd)));
}
