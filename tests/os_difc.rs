//! OS-level DIFC integration tests: the syscall surface of Fig. 3 and
//! the §5.2 semantics (labeled files, directory rules, unreliable pipes,
//! signals, capability transfer, persistence).

use laminar_difc::{CapSet, Capability, Label, LabelType, SecPair};
use laminar_os::{Kernel, LaminarModule, NullModule, OpenMode, OsError, Signal, UserId};

fn boot_alice() -> (std::sync::Arc<Kernel>, laminar_os::TaskHandle) {
    let k = Kernel::boot(LaminarModule);
    k.add_user(UserId(1), "alice");
    let t = k.login(UserId(1)).unwrap();
    (k, t)
}

#[test]
fn labeled_file_round_trip_requires_taint() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let secret = SecPair::secrecy_only(Label::singleton(a));

    let fd = alice.create_file_labeled("cal.ics", secret.clone()).unwrap();
    alice.write(fd, b"busy tuesday").unwrap();
    alice.close(fd).unwrap();

    // Unlabeled task: open for read denied (no read up).
    assert!(matches!(alice.open("cal.ics", OpenMode::Read), Err(OsError::FlowDenied(_))));

    // Taint, then read succeeds.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    let fd = alice.open("cal.ics", OpenMode::Read).unwrap();
    assert_eq!(alice.read(fd, 64).unwrap(), b"busy tuesday");
    alice.close(fd).unwrap();

    // Tainted task cannot write an unlabeled file (no write down).
    assert!(alice.create("/tmp/leak.txt").is_err()); // creation in unlabeled /tmp
                                                     // Untaint with a- and it works again.
    alice.set_task_label(LabelType::Secrecy, Label::empty()).unwrap();
    let fd = alice.create("/tmp/ok.txt").unwrap();
    alice.close(fd).unwrap();
}

#[test]
fn file_labels_survive_in_extended_attributes() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let labels = SecPair::secrecy_only(Label::singleton(a));
    let fd = alice.create_file_labeled("x.dat", labels.clone()).unwrap();
    alice.close(fd).unwrap();
    // get_labels needs only parent traversal, not a taint.
    assert_eq!(alice.get_labels("x.dat").unwrap(), labels);
}

#[test]
fn label_change_requires_capabilities() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    // Drop the minus capability, keep plus.
    alice.drop_capabilities(&[Capability::minus(a)]).unwrap();
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    // Now the taint is sticky: the task cannot shed it.
    assert!(matches!(
        alice.set_task_label(LabelType::Secrecy, Label::empty()),
        Err(OsError::LabelChangeDenied(_))
    ));
}

#[test]
fn tainted_principal_cannot_create_in_unlabeled_dir() {
    // §5.2: a {S(a)} principal may not create even an {S(a)}-labeled
    // file in an unlabeled directory — the *name* would leak. It must
    // pre-create before tainting itself.
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let sa = SecPair::secrecy_only(Label::singleton(a));

    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    assert!(alice.create_file_labeled("/tmp/secret2.txt", sa.clone()).is_err());

    // Inside an {S(a)} directory it is fine.
    alice.set_task_label(LabelType::Secrecy, Label::empty()).unwrap();
    alice.mkdir_labeled("/tmp/avault", sa.clone()).unwrap();
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    let fd = alice.create_file_labeled("/tmp/avault/notes.txt", sa).unwrap();
    alice.close(fd).unwrap();
}

#[test]
fn directory_listing_is_protected_by_directory_label() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let sa = SecPair::secrecy_only(Label::singleton(a));
    alice.mkdir_labeled("/tmp/avault", sa).unwrap();

    // Unlabeled task cannot list the secret directory (names leak).
    assert!(alice.readdir("/tmp/avault").is_err());
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    assert!(alice.readdir("/tmp/avault").unwrap().is_empty());
}

#[test]
fn admin_integrity_on_system_dirs() {
    let (k, alice) = boot_alice();
    // An empty-integrity task traverses / freely.
    assert!(alice.stat("/etc").is_ok());
    // A task carrying its own integrity tag cannot read admin-labeled
    // dirs (no read down) — it must use relative paths (§5.2).
    let u = alice.alloc_tag().unwrap();
    alice.set_task_label(LabelType::Integrity, Label::singleton(u)).unwrap();
    assert!(alice.stat("/etc").is_err());
    // Relative path in its own cwd still works only if cwd files carry
    // the tag; drop back for cleanliness.
    alice.set_task_label(LabelType::Integrity, Label::empty()).unwrap();
    assert!(alice.stat("/etc").is_ok());
    assert_eq!(k.module_name(), "laminar");
}

#[test]
fn pipes_silently_drop_illegal_writes() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let (r, w) = alice.pipe().unwrap(); // unlabeled pipe

    // Legal write delivers.
    assert_eq!(alice.write(w, b"ok").unwrap(), 2);
    assert_eq!(alice.read(r, 8).unwrap(), b"ok");

    // Tainted writer: the write *appears* to succeed but delivers
    // nothing (an error would leak, §5.2).
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    assert_eq!(alice.write(w, b"secret").unwrap(), 6);
    alice.set_task_label(LabelType::Secrecy, Label::empty()).unwrap();
    assert_eq!(alice.read(r, 8).unwrap(), b"", "dropped message must not arrive");
}

#[test]
fn pipe_reads_are_nonblocking_with_no_eof() {
    let (_k, alice) = boot_alice();
    let (r, w) = alice.pipe().unwrap();
    // Empty pipe: zero bytes, not an error, not EOF.
    assert_eq!(alice.read(r, 8).unwrap(), b"");
    alice.close(w).unwrap();
    // Writer gone: still just "no data".
    assert_eq!(alice.read(r, 8).unwrap(), b"");
}

#[test]
fn capability_transfer_is_kernel_mediated() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let (r, w) = alice.pipe().unwrap();
    let child = alice.fork(Some(CapSet::new())).unwrap(); // no caps inherited

    // The sender must hold the capability.
    assert!(child.write_capability(Capability::plus(a), w).is_err());

    // Parent sends a+; child receives and can now taint itself.
    alice.write_capability(Capability::plus(a), w).unwrap();
    assert_eq!(child.read_capability(r).unwrap(), Some(Capability::plus(a)));
    child.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    // But it cannot shed the taint (no a- was sent).
    assert!(child.set_task_label(LabelType::Secrecy, Label::empty()).is_err());
}

#[test]
fn fork_restricts_capabilities_to_subsets() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let mut just_plus = CapSet::new();
    just_plus.grant(Capability::plus(a));
    let child = alice.fork(Some(just_plus.clone())).unwrap();
    assert_eq!(child.current_caps().unwrap(), just_plus);

    // A superset is rejected.
    let b = laminar_difc::Tag::from_raw(9999);
    let mut superset = CapSet::new();
    superset.grant(Capability::plus(b));
    assert!(child.fork(Some(superset)).is_err());
}

#[test]
fn signals_respect_flow_rules_with_silent_drop() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let child = alice.fork(None).unwrap();

    // Unlabeled → unlabeled: delivered.
    alice.kill(child.id(), Signal(15)).unwrap();
    assert_eq!(child.next_signal().unwrap(), Some(Signal(15)));

    // Tainted sender → unlabeled target: silently dropped.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    alice.kill(child.id(), Signal(9)).unwrap();
    assert_eq!(child.next_signal().unwrap(), None);
}

#[test]
fn exec_checks_binary_integrity() {
    let (k, alice) = boot_alice();
    let i = alice.alloc_tag().unwrap();
    let vouched = SecPair::integrity_only(Label::singleton(i));

    // An {I(i)}-endorsed plugin tree is installed by the administrator —
    // strict Biba traversal means an integrity subtree cannot be grown
    // from inside the rules (the §5.2 directory-integrity tension; the
    // paper's system dirs are likewise labeled at install time).
    k.install_dir("/plugins", vouched.clone()).unwrap();
    k.install_file("/plugins/plugin.bin", vouched, b"ELF").unwrap();
    k.install_file("/plugins/random.bin", SecPair::unlabeled(), b"???").unwrap();

    // The server moves there while unlabeled, then raises its integrity:
    // the addons.mozilla.org pattern of §3.3 — it can exec only the
    // vouched plugin.
    alice.chdir("/plugins").unwrap();
    alice.set_task_label(LabelType::Integrity, Label::singleton(i)).unwrap();
    assert!(alice.exec("plugin.bin").is_ok());
    assert!(alice.exec("random.bin").is_err());
}

#[test]
fn persistent_caps_are_granted_at_login() {
    let k = Kernel::boot(LaminarModule);
    k.add_user(UserId(7), "carol");
    let carol = k.login(UserId(7)).unwrap();
    let t = carol.alloc_tag().unwrap();
    carol.save_persistent_caps().unwrap();

    let carol2 = k.login(UserId(7)).unwrap();
    assert!(carol2.current_caps().unwrap().can_add(t));
    assert!(carol2.current_caps().unwrap().can_remove(t));
}

#[test]
fn untrusted_multithreaded_processes_keep_homogeneous_labels() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let _t2 = alice.spawn_thread(None).unwrap();
    // Two threads, process not blessed as a trusted VM: per-thread label
    // changes are rejected (§4.1).
    assert!(matches!(
        alice.set_task_label(LabelType::Secrecy, Label::singleton(a)),
        Err(OsError::PermissionDenied(_))
    ));
}

#[test]
fn null_module_enforces_nothing() {
    let k = Kernel::boot(NullModule);
    k.add_user(UserId(1), "alice");
    let alice = k.login(UserId(1)).unwrap();
    let a = alice.alloc_tag().unwrap();
    let secret = SecPair::secrecy_only(Label::singleton(a));
    let fd = alice.create_file_labeled("s.txt", secret).unwrap();
    alice.write(fd, b"x").unwrap();
    alice.close(fd).unwrap();
    // Stock Linux: labels stored but not enforced.
    assert!(alice.open("s.txt", OpenMode::Read).is_ok());
}

#[test]
fn tcb_paths_are_locked_down() {
    let (_k, alice) = boot_alice();
    // No tcb tag: privileged drops are denied.
    assert!(matches!(
        alice.drop_label_tcb(alice.id()),
        Err(OsError::PermissionDenied(_))
    ));
    assert!(alice.set_task_labels_tcb(alice.id(), SecPair::unlabeled()).is_err());
    assert!(alice.grant_capabilities_tcb(alice.id(), &CapSet::new()).is_err());
}

#[test]
fn unlink_is_a_write_to_the_parent() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let sa = SecPair::secrecy_only(Label::singleton(a));
    alice.mkdir_labeled("/tmp/avault", sa.clone()).unwrap();
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    let fd = alice.create_file_labeled("/tmp/avault/f", sa).unwrap();
    alice.close(fd).unwrap();
    alice.set_task_label(LabelType::Secrecy, Label::empty()).unwrap();

    // Unlabeled task may not remove the name from the {S(a)} directory...
    assert!(alice.unlink("/tmp/avault/f").is_err());
    // ...but the tainted owner may.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    alice.unlink("/tmp/avault/f").unwrap();
}

#[test]
fn labeled_pipes_silently_drop_in_both_lattice_directions() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let i = alice.alloc_tag().unwrap();

    // An {S(a)} pipe, created while tainted.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    let (sr, sw) = alice.pipe().unwrap();
    alice.set_task_label(LabelType::Secrecy, Label::empty()).unwrap();

    // An {I(i)} pipe, created while endorsed.
    alice.set_task_label(LabelType::Integrity, Label::singleton(i)).unwrap();
    let (_ir, iw) = alice.pipe().unwrap();
    alice.set_task_label(LabelType::Integrity, Label::empty()).unwrap();

    // Unlabeled → {S(a)}: a legal raise, delivered.
    assert_eq!(alice.write(sw, b"up").unwrap(), 2);
    // Unlabeled → {I(i)}: the writer cannot vouch, silently dropped —
    // the return value must be indistinguishable from delivery (§5.2).
    assert_eq!(alice.write(iw, b"forged").unwrap(), 6);

    // Drain the secrecy pipe from a tainted reader: only the legal
    // message arrived.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    assert_eq!(alice.read(sr, 16).unwrap(), b"up");

    // An {S(a),S(b)}-tainted writer outranks the {S(a)} pipe: dropped.
    let b = alice.alloc_tag().unwrap();
    alice.set_task_label(LabelType::Secrecy, Label::from_tags([a, b])).unwrap();
    assert_eq!(alice.write(sw, b"too-high").unwrap(), 8);
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    assert_eq!(alice.read(sr, 16).unwrap(), b"", "over-tainted write must not arrive");
}

#[test]
fn pipe_read_flow_failure_is_a_visible_error() {
    // Reads are the *safe* direction: denying one reveals nothing the
    // reader couldn't already know, so unlike writes the failure is loud.
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    let (r, w) = alice.pipe().unwrap(); // {S(a)} pipe
    assert_eq!(alice.write(w, b"secret").unwrap(), 6);
    alice.set_task_label(LabelType::Secrecy, Label::empty()).unwrap();

    // Unlabeled reader: visible FlowDenied, not an empty read.
    assert!(matches!(alice.read(r, 16), Err(OsError::FlowDenied(_))));

    // Tainted again: nonblocking read returns the data, then empty —
    // never EOF, never an error.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    assert_eq!(alice.read(r, 16).unwrap(), b"secret");
    assert_eq!(alice.read(r, 16).unwrap(), b"");
}

#[test]
fn create_file_labeled_checks_the_three_conditions_in_order() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let i = alice.alloc_tag().unwrap();
    let sa = SecPair::secrecy_only(Label::singleton(a));
    alice.mkdir_labeled("/tmp/avault", sa.clone()).unwrap();

    // Condition 1a: an {S(a)} creator may not mint a file *below* its
    // taint, even inside the {S(a)} directory. PermissionDenied, not a
    // flow error — the checks short-circuit before the parent write.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    assert!(matches!(
        alice.create_file_labeled("/tmp/avault/low", SecPair::unlabeled()),
        Err(OsError::PermissionDenied(_))
    ));

    // Condition 1b: nobody can stamp integrity they do not carry.
    assert!(matches!(
        alice.create_file_labeled(
            "/tmp/avault/vouched",
            SecPair::new(Label::singleton(a), Label::singleton(i))
        ),
        Err(OsError::PermissionDenied(_))
    ));

    // Condition 3: same creator, unlabeled parent — now it *is* the
    // flow check that fires (the name would leak into /tmp).
    assert!(matches!(
        alice.create_file_labeled("/tmp/leak", sa.clone()),
        Err(OsError::FlowDenied(_))
    ));

    // All conditions met: create succeeds.
    let fd = alice.create_file_labeled("/tmp/avault/ok", sa.clone()).unwrap();
    alice.close(fd).unwrap();

    // Condition 2: shed the a+ capability and the same create is
    // rejected — the taint is no longer voluntary.
    alice.drop_capabilities(&[Capability::plus(a)]).unwrap();
    assert!(matches!(
        alice.create_file_labeled("/tmp/avault/involuntary", sa),
        Err(OsError::PermissionDenied(_))
    ));
}

#[test]
fn mkdir_labeled_follows_the_same_create_conditions() {
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let sa = SecPair::secrecy_only(Label::singleton(a));
    alice.mkdir_labeled("/tmp/avault", sa.clone()).unwrap();
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();

    // Condition 1a for directories.
    assert!(matches!(
        alice.mkdir_labeled("/tmp/avault/plain", SecPair::unlabeled()),
        Err(OsError::PermissionDenied(_))
    ));
    // Condition 3 for directories.
    assert!(matches!(
        alice.mkdir_labeled("/tmp/leakdir", sa.clone()),
        Err(OsError::FlowDenied(_))
    ));
    // Legal nested secret directory.
    alice.mkdir_labeled("/tmp/avault/inner", sa.clone()).unwrap();

    // Condition 2 for directories: involuntary taint blocks mkdir too.
    alice.drop_capabilities(&[Capability::plus(a)]).unwrap();
    assert!(matches!(
        alice.mkdir_labeled("/tmp/avault/involuntary", sa),
        Err(OsError::PermissionDenied(_))
    ));
}
