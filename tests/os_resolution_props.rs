//! Property tests for path resolution under the Laminar LSM: traversal
//! mediation is consistent, symlink following is equivalent to direct
//! access, and labels discovered via `get_labels` always match `stat`.
//!
//! Randomization is driven by the in-repo deterministic PRNG so the
//! suite runs with zero network access.

use laminar_difc::{Label, LabelType, SecPair};
use laminar_os::{Kernel, LaminarModule, OpenMode, UserId};
use laminar_util::SplitMix64;

/// A small random directory tree description: a list of (depth ≤ 3)
/// paths to create under /tmp.
fn random_tree(rng: &mut SplitMix64) -> Vec<Vec<u8>> {
    let entries = rng.gen_range(1..8);
    (0..entries)
        .map(|_| {
            let depth = rng.gen_range(1..4);
            (0..depth).map(|_| rng.below(3) as u8).collect()
        })
        .collect()
}

fn path_of(parts: &[u8]) -> String {
    let mut p = String::from("/tmp");
    for c in parts {
        p.push_str(&format!("/d{c}"));
    }
    p
}

/// Creating a random unlabeled tree, every created path stats as a
/// directory, and every file dropped into it round-trips — i.e.
/// resolution is deterministic and mediation of unlabeled trees
/// never interferes.
#[test]
fn unlabeled_trees_resolve_deterministically() {
    let mut rng = SplitMix64::new(0x0511);
    for _ in 0..24 {
        let tree = random_tree(&mut rng);
        let k = Kernel::boot(LaminarModule);
        k.add_user(UserId(1), "u");
        let t = k.login(UserId(1)).unwrap();
        let mut created = Vec::new();
        for parts in &tree {
            // Create each prefix (ignore Exists).
            for i in 1..=parts.len() {
                let p = path_of(&parts[..i]);
                match t.mkdir(&p) {
                    Ok(()) => created.push(p),
                    Err(laminar_os::OsError::Exists) => {}
                    Err(e) => panic!("mkdir {p}: {e}"),
                }
            }
        }
        for p in &created {
            assert!(t.stat(p).unwrap().is_dir);
        }
        // Drop a file at the deepest path of the first entry.
        let dir = path_of(&tree[0]);
        let f = format!("{dir}/file");
        let fd = t.create(&f).unwrap();
        t.write(fd, b"x").unwrap();
        t.close(fd).unwrap();
        let fd = t.open(&f, OpenMode::Read).unwrap();
        assert_eq!(t.read(fd, 4).unwrap(), b"x");
    }
}

/// A symlink to a file behaves exactly like the file for open/stat,
/// for arbitrary (secrecy-only) file labels: the *link* adds no
/// access beyond what direct access grants.
#[test]
fn symlink_equivalent_to_direct_access() {
    for fmask in 0u8..8 {
        for tmask in 0u8..8 {
            let k = Kernel::boot(LaminarModule);
            k.add_user(UserId(1), "u");
            let task = k.login(UserId(1)).unwrap();
            let tags: Vec<_> = (0..3).map(|_| task.alloc_tag().unwrap()).collect();
            let lbl = |mask: u8| {
                Label::from_tags(
                    tags.iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, &t)| t),
                )
            };

            let fpair = SecPair::secrecy_only(lbl(fmask));
            let fd = task.create_file_labeled("/tmp/target", fpair).unwrap();
            task.close(fd).unwrap();
            task.symlink("/tmp/target", "/tmp/link").unwrap();

            task.set_task_label(LabelType::Secrecy, lbl(tmask)).unwrap();
            let direct = task.open("/tmp/target", OpenMode::Read).is_ok();
            let via_link = task.open("/tmp/link", OpenMode::Read).is_ok();
            assert_eq!(direct, via_link);

            let direct_stat = task.stat("/tmp/target").map(|m| m.inode);
            let link_stat = task.stat("/tmp/link").map(|m| m.inode);
            assert_eq!(direct_stat.is_ok(), link_stat.is_ok());
            if let (Ok(a), Ok(b)) = (direct_stat, link_stat) {
                assert_eq!(a, b);
            }
        }
    }
}

/// `get_labels` (parent-mediated) and `stat` (inode-mediated) agree
/// on the labels whenever both succeed.
#[test]
fn get_labels_agrees_with_stat() {
    for fmask in 0u8..8 {
        let k = Kernel::boot(LaminarModule);
        k.add_user(UserId(1), "u");
        let task = k.login(UserId(1)).unwrap();
        let tags: Vec<_> = (0..3).map(|_| task.alloc_tag().unwrap()).collect();
        let label = Label::from_tags(
            tags.iter()
                .enumerate()
                .filter(|(i, _)| fmask & (1 << i) != 0)
                .map(|(_, &t)| t),
        );
        let pair = SecPair::secrecy_only(label.clone());
        let fd = task.create_file_labeled("/tmp/f", pair.clone()).unwrap();
        task.close(fd).unwrap();

        // get_labels needs only traversal; it must report the real labels.
        assert_eq!(task.get_labels("/tmp/f").unwrap(), pair.clone());
        // stat succeeds only when tainted appropriately — and then agrees.
        task.set_task_label(LabelType::Secrecy, label).unwrap();
        assert_eq!(task.stat("/tmp/f").unwrap().labels, pair);
    }
}
