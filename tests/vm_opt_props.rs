//! Property tests for the VM's compilation pipeline: for randomly
//! generated programs, all barrier modes and both optimizer settings
//! must compute identical results — i.e., barrier insertion and
//! redundant-barrier elimination are semantics-preserving (the
//! correctness claim behind §5.1's optimization).

use laminar_vm::{BarrierMode, ClassId, FunctionBuilder, ProgramBuilder, Value, Vm};
use proptest::prelude::*;

/// One self-contained random statement. Locals: 0 = accumulator (int),
/// 1 = object (2 int fields), 2 = array (len 8), 3 = scratch object.
#[derive(Clone, Debug)]
enum Stmt {
    AddConst(i8),
    MulConst(i8),
    StoreField(u8),
    LoadField(u8),
    StoreArray(u8),
    LoadArray(u8),
    SwapObjects,
    FreshObject,
    /// if (acc % 2 == 0) then-branch else else-branch
    Branch(Vec<Stmt>, Vec<Stmt>),
    /// bounded counted loop over the body
    Loop(u8, Vec<Stmt>),
}

fn stmt_strategy(depth: u32) -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Stmt::AddConst),
        any::<i8>().prop_map(Stmt::MulConst),
        (0u8..2).prop_map(Stmt::StoreField),
        (0u8..2).prop_map(Stmt::LoadField),
        (0u8..8).prop_map(Stmt::StoreArray),
        (0u8..8).prop_map(Stmt::LoadArray),
        Just(Stmt::SwapObjects),
        Just(Stmt::FreshObject),
    ];
    leaf.prop_recursive(depth, 24, 6, |inner| {
        prop_oneof![
            (
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(t, e)| Stmt::Branch(t, e)),
            ((1u8..4), prop::collection::vec(inner, 0..4))
                .prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    })
}

fn emit(b: &mut FunctionBuilder, stmt: &Stmt, cls: ClassId) {
    match stmt {
        Stmt::AddConst(c) => {
            b.load(0).push_int(i64::from(*c)).add().store(0);
        }
        Stmt::MulConst(c) => {
            // Keep the accumulator bounded to avoid overflow noise.
            b.load(0).push_int(i64::from(*c)).mul().push_int(1_000_003).modulo().store(0);
        }
        Stmt::StoreField(f) => {
            b.load(1).load(0).put_field(u16::from(*f));
        }
        Stmt::LoadField(f) => {
            b.load(1).get_field(u16::from(*f)).load(0).add().store(0);
        }
        Stmt::StoreArray(i) => {
            b.load(2).push_int(i64::from(*i)).load(0).astore();
        }
        Stmt::LoadArray(i) => {
            b.load(2).push_int(i64::from(*i)).aload().load(0).add().store(0);
        }
        Stmt::SwapObjects => {
            b.load(1).store(4).load(3).store(1).load(4).store(3);
        }
        Stmt::FreshObject => {
            b.new_object(cls).store(3);
            b.load(3).push_int(7).put_field(0);
            b.load(3).push_int(9).put_field(1);
        }
        Stmt::Branch(then_b, else_b) => {
            let els = b.new_label();
            let done = b.new_label();
            b.load(0).push_int(2).modulo().push_int(0).cmp_eq();
            b.jump_if_false(els);
            for s in then_b {
                emit(b, s, cls);
            }
            b.jump(done);
            b.bind(els);
            for s in else_b {
                emit(b, s, cls);
            }
            b.bind(done);
        }
        Stmt::Loop(n, body) => {
            // Use local 5 as the loop counter.
            b.push_int(i64::from(*n)).store(5);
            let head = b.new_label();
            let done = b.new_label();
            b.bind(head);
            b.load(5).push_int(0).cmp_le().jump_if_true(done);
            for s in body {
                emit(b, s, cls);
            }
            b.load(5).push_int(1).sub().store(5);
            b.jump(head);
            b.bind(done);
        }
    }
}

fn build_program(stmts: &[Stmt]) -> laminar_vm::Program {
    let mut pb = ProgramBuilder::new();
    let cls = pb.add_class("Obj", 2);
    pb.func("main", 0, true, 6, |b| {
        // init: acc = 1; two objects with known fields; zeroed array.
        b.push_int(1).store(0);
        b.new_object(cls).store(1);
        b.load(1).push_int(3).put_field(0);
        b.load(1).push_int(5).put_field(1);
        b.new_object(cls).store(3);
        b.load(3).push_int(11).put_field(0);
        b.load(3).push_int(13).put_field(1);
        b.push_int(8).new_array().store(2);
        let mut i = 0;
        while i < 8 {
            b.load(2).push_int(i).push_int(0).astore();
            i += 1;
        }
        for s in stmts {
            emit(b, s, cls);
        }
        // fold some heap state into the result
        b.load(0);
        b.load(1).get_field(0).add();
        b.load(1).get_field(1).add();
        b.load(2).push_int(0).aload().add();
        b.load(2).push_int(7).aload().add();
        b.ret();
    });
    pb.finish().expect("generated program must verify")
}

fn run(program: &laminar_vm::Program, mode: BarrierMode, optimize: bool) -> Value {
    let mut vm = Vm::new(program.clone(), vec![], mode);
    vm.set_optimize(optimize);
    vm.call_by_name("main", &[])
        .expect("generated program must run")
        .expect("program returns a value")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All five configurations agree on every generated program.
    #[test]
    fn barrier_modes_and_optimizer_preserve_semantics(
        stmts in prop::collection::vec(stmt_strategy(2), 0..12)
    ) {
        let program = build_program(&stmts);
        let reference = run(&program, BarrierMode::None, true);
        for (mode, opt) in [
            (BarrierMode::Static, true),
            (BarrierMode::Static, false),
            (BarrierMode::Dynamic, true),
            (BarrierMode::Dynamic, false),
        ] {
            prop_assert_eq!(run(&program, mode, opt), reference, "{:?} opt={}", mode, opt);
        }
    }

    /// The optimizer only ever removes barriers (never adds), and the
    /// optimized run executes no more barriers than the unoptimized one.
    #[test]
    fn optimizer_is_monotone(
        stmts in prop::collection::vec(stmt_strategy(2), 0..12)
    ) {
        let program = build_program(&stmts);
        let count = |opt: bool| {
            let mut vm = Vm::new(program.clone(), vec![], BarrierMode::Static);
            vm.set_optimize(opt);
            vm.call_by_name("main", &[]).unwrap();
            (vm.stats().total_barriers(), vm.stats().barriers_eliminated)
        };
        let (with_opt, eliminated) = count(true);
        let (without_opt, eliminated_off) = count(false);
        prop_assert!(with_opt <= without_opt);
        prop_assert_eq!(eliminated_off, 0);
        // If anything was eliminated at compile time, it must show up as
        // fewer executed barriers (reachable code) or at least not more.
        if eliminated > 0 {
            prop_assert!(with_opt <= without_opt);
        }
    }
}
