//! End-to-end scenarios across every layer: the §3.3 calendar story on
//! the full stack, cross-process secrecy in Battleship, and the FreeCS
//! ban policy — the complete paper narrative as executable assertions.

use laminar::{Laminar, RegionParams};
use laminar_apps::battleship::{BaselineBattleship, Battleship};
use laminar_apps::calendar::CalendarSystem;
use laminar_apps::freecs::{ChatServer, CmdOutcome};
use laminar_apps::gradesheet::{BaselineGradeSheet, GradeSheet};
use laminar_difc::{Capability, Label};
use laminar_os::{OpenMode, UserId};

#[test]
fn calendar_story_of_section_3_3() {
    let sys = Laminar::boot();
    let cal = CalendarSystem::new(&sys).unwrap();

    // The scheduler finds the common slot and writes it where only
    // Alice can read it.
    let slot = cal.schedule_meeting(10).unwrap();
    assert_eq!(slot, 13);
    assert_eq!(cal.alice_read_meeting().unwrap(), 13);

    // Updates to either calendar shift the outcome.
    cal.add_busy(0, 13).unwrap();
    assert_eq!(cal.schedule_meeting(10).unwrap(), 14);
    cal.add_busy(1, 14).unwrap();
    assert_eq!(cal.schedule_meeting(10).unwrap(), 15);
}

#[test]
fn battleship_opponent_cannot_see_boards() {
    let sys = Laminar::boot();
    let game = Battleship::new(&sys, 99, false).unwrap();
    let secured = game.play(123).unwrap();
    let mut baseline = BaselineBattleship::new(&sys, 99, false).unwrap();
    assert_eq!(secured, baseline.play(123).unwrap());
    // Every shot resolution entered a region and declassified ≤ 1 result.
    let stats = game.stats();
    assert!(stats.copies >= secured.shots);
    assert!(stats.regions_entered >= secured.shots);
}

#[test]
fn gradesheet_full_policy_sweep() {
    let sys = Laminar::boot();
    let gs = GradeSheet::new(&sys, 5, 3).unwrap();

    // Professor fills everything; every student reads exactly their row;
    // every TA updates exactly their column.
    for i in 0..5 {
        for j in 0..3 {
            gs.professor_set(i, j, (i * 10 + j) as i64).unwrap();
        }
    }
    for i in 0..5 {
        for j in 0..3 {
            assert_eq!(gs.student_read(i, j).unwrap(), (i * 10 + j) as i64);
            for other in 0..5 {
                if other != i {
                    assert!(gs.student_read_other(i, other, j).is_err());
                }
            }
        }
    }
    for ta in 0..3 {
        for j in 0..3 {
            let res = gs.ta_set(ta, 0, j, 99);
            assert_eq!(res.is_ok(), ta == j, "ta {ta} project {j}");
        }
    }
    // Averages agree with the baseline computation.
    let mut base = BaselineGradeSheet::new(5, 3);
    for i in 0..5 {
        for j in 0..3 {
            let v = gs.student_read(i, j).unwrap();
            base.set(laminar_apps::gradesheet::Role::Professor, i, j, v).unwrap();
        }
    }
    for j in 0..3 {
        assert_eq!(gs.professor_average(j).unwrap(), base.average(j));
    }
}

#[test]
fn freecs_ban_policy_end_to_end() {
    let sys = Laminar::boot();
    let srv = ChatServer::new(&sys).unwrap();
    srv.login_user("boss", true).unwrap(); // VIP, will own the group
    srv.login_user("mod", false).unwrap();
    srv.login_user("troll", false).unwrap();
    srv.create_group("town", "boss").unwrap();

    assert_eq!(srv.join("troll", "town").unwrap(), CmdOutcome::Ok);
    assert_eq!(srv.say("troll", "town", "spam").unwrap(), CmdOutcome::Ok);

    // Only the VIP-superuser can ban; then the ban is effective and the
    // log stops growing for the troll.
    assert_eq!(srv.ban("mod", "town", "troll").unwrap(), CmdOutcome::Denied);
    assert_eq!(srv.ban("boss", "town", "troll").unwrap(), CmdOutcome::Ok);
    assert_eq!(srv.kick("boss", "town", "troll").unwrap(), CmdOutcome::Ok);
    let len_before = srv.log_len("town").unwrap();
    assert_eq!(srv.say("troll", "town", "more").unwrap(), CmdOutcome::Denied);
    assert_eq!(srv.join("troll", "town").unwrap(), CmdOutcome::Denied);
    assert_eq!(srv.log_len("town").unwrap(), len_before);
}

#[test]
fn raw_processes_are_constrained_by_the_os_alone() {
    // A non-Laminar (raw) process coexists with labeled files: OS
    // enforcement applies to all applications (§4.1).
    let sys = Laminar::boot();
    sys.add_user(UserId(50), "legacy");
    let raw = sys.login_raw(UserId(50)).unwrap();

    sys.add_user(UserId(51), "modern");
    let modern = sys.login(UserId(51)).unwrap();
    let t = modern.create_tag().unwrap();
    let params =
        RegionParams::new().secrecy(Label::singleton(t)).grant(Capability::plus(t));

    // The modern app pre-creates a labeled file and fills it in-region.
    let fd = modern
        .task()
        .create_file_labeled(
            "/tmp/modern.secret",
            laminar_difc::SecPair::secrecy_only(Label::singleton(t)),
        )
        .unwrap();
    modern.task().close(fd).unwrap();
    modern
        .secure(
            &params,
            |g| {
                let os = g.os()?;
                let fd = os.open("/tmp/modern.secret", OpenMode::Write)?;
                os.write(fd, b"classified")?;
                os.close(fd)?;
                Ok(())
            },
            |_| {},
        )
        .unwrap()
        .unwrap();

    // The legacy process simply cannot open it.
    assert!(raw.open("/tmp/modern.secret", OpenMode::Read).is_err());
    // But unlabeled files remain freely shared.
    let fd = raw.create("/tmp/shared.txt").unwrap();
    raw.write(fd, b"hello").unwrap();
    raw.close(fd).unwrap();
    let fd = modern.task().open("/tmp/shared.txt", OpenMode::Read).unwrap();
    assert_eq!(modern.task().read(fd, 16).unwrap(), b"hello");
}

#[test]
fn memoization_pitfall_of_section_4_6() {
    // §4.6: a library memoizing results across labels breaks under any
    // DIFC system — the memoized (labeled) value cannot be returned to a
    // caller with different labels. Model the memo as a labeled cell.
    let sys = Laminar::boot();
    sys.add_user(UserId(60), "memo");
    let p = sys.login(UserId(60)).unwrap();
    let a = p.create_tag().unwrap();
    let b = p.create_tag().unwrap();

    let region_a =
        RegionParams::new().secrecy(Label::singleton(a)).grant(Capability::plus(a));
    let region_b =
        RegionParams::new().secrecy(Label::singleton(b)).grant(Capability::plus(b));

    // First call, inside {S(a)}: computes and memoizes.
    let memo =
        p.secure(&region_a, |g| Ok(g.new_labeled(42u64)), |_| {}).unwrap().unwrap();

    // Later call with a different label: the attempt to return the
    // memoized value is prevented (read suppressed).
    let reuse = p.secure(&region_b, |g| memo.read(g, |v| *v), |_| {}).unwrap();
    assert!(reuse.is_none(), "cross-label memo reuse must be blocked");
}
