//! Edge cases of `set_task_label`/`set_task_labels`: the capability
//! rule's corner cases, partial application of combined changes, and
//! the O(1) identity fast path added in PR 1.
//!
//! The flow-check cache counters are process-global, so every test here
//! serializes on one lock and the counter-sensitive test resets the
//! cache first.

use laminar::stats::{flow_cache_stats, reset_flow_cache};
use laminar_difc::{Capability, Label, LabelType, SecPair};
use laminar_os::{Kernel, LaminarModule, OsError, UserId};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn boot_alice() -> (std::sync::Arc<Kernel>, laminar_os::TaskHandle) {
    let k = Kernel::boot(LaminarModule);
    k.add_user(UserId(1), "alice");
    let t = k.login(UserId(1)).unwrap();
    (k, t)
}

#[test]
fn declassify_needs_a_minus_capability_per_tag() {
    let _g = serialize();
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    let b = alice.alloc_tag().unwrap();
    alice.set_task_label(LabelType::Secrecy, Label::from_tags([a, b])).unwrap();
    alice.drop_capabilities(&[Capability::minus(a)]).unwrap();

    // Shedding everything needs a− *and* b−; a− is gone.
    assert!(matches!(
        alice.set_task_label(LabelType::Secrecy, Label::empty()),
        Err(OsError::LabelChangeDenied(_))
    ));
    // Shedding only b is still within the remaining capabilities.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    // The sticky tag really is sticky.
    assert!(matches!(
        alice.set_task_label(LabelType::Secrecy, Label::empty()),
        Err(OsError::LabelChangeDenied(_))
    ));
}

#[test]
fn raising_secrecy_needs_a_plus_capability() {
    let _g = serialize();
    let (_k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    alice.drop_capabilities(&[Capability::plus(a)]).unwrap();
    // A raise is a label *addition*: gated by a+, not a−.
    assert!(matches!(
        alice.set_task_label(LabelType::Secrecy, Label::singleton(a)),
        Err(OsError::LabelChangeDenied(_))
    ));
    // The minus capability alone cannot stand in for the plus.
    assert!(alice.current_caps().unwrap().can_remove(a));
}

#[test]
fn simultaneous_secrecy_raise_and_integrity_drop() {
    let _g = serialize();
    let (_k, alice) = boot_alice();
    let s = alice.alloc_tag().unwrap();
    let i = alice.alloc_tag().unwrap();
    alice.set_task_label(LabelType::Integrity, Label::singleton(i)).unwrap();

    // One combined change: gain S(s), shed I(i). Needs s+ and i−, both
    // held — the two components are checked independently.
    alice.set_task_labels(SecPair::new(Label::singleton(s), Label::empty())).unwrap();
    let now = alice.current_labels().unwrap();
    assert_eq!(now.secrecy(), &Label::singleton(s));
    assert!(now.integrity().is_empty());
}

#[test]
fn combined_change_applies_components_in_order() {
    let _g = serialize();
    let (_k, alice) = boot_alice();
    let s = alice.alloc_tag().unwrap();
    let i = alice.alloc_tag().unwrap();
    alice.set_task_label(LabelType::Integrity, Label::singleton(i)).unwrap();
    alice.drop_capabilities(&[Capability::minus(i)]).unwrap();

    // Secrecy first, then integrity: the secrecy raise is legal and
    // lands; the integrity drop then fails on the missing i−. The
    // combined call errors but the secrecy half has already applied —
    // set_task_labels is not transactional (pinned so a future change
    // is a conscious one).
    assert!(matches!(
        alice.set_task_labels(SecPair::new(Label::singleton(s), Label::empty())),
        Err(OsError::LabelChangeDenied(_))
    ));
    let now = alice.current_labels().unwrap();
    assert_eq!(now.secrecy(), &Label::singleton(s));
    assert_eq!(now.integrity(), &Label::singleton(i));
}

#[test]
fn identity_label_change_skips_rule_hook_and_cache() {
    let _g = serialize();
    let (k, alice) = boot_alice();
    let a = alice.alloc_tag().unwrap();
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    // Make the fast path do real work avoidance: shed every capability
    // so a re-checked change would be *denied* — only the identity
    // short-circuit lets it pass.
    alice.drop_capabilities(&[Capability::plus(a), Capability::minus(a)]).unwrap();

    reset_flow_cache();
    let hooks_before = k.hook_calls();
    let cache_before = flow_cache_stats();

    // Same label again: succeeds despite the empty capability set.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(a)).unwrap();
    alice.set_task_labels(SecPair::secrecy_only(Label::singleton(a))).unwrap();

    // O(1) fast path: no LSM hook ran and the flow cache saw no probe,
    // no fast-path hit, no insert — the interned-pair equality answered
    // before enforcement was consulted at all.
    assert_eq!(k.hook_calls(), hooks_before, "identity change must not reach the hook");
    assert_eq!(
        flow_cache_stats(),
        cache_before,
        "identity change must not touch the flow cache"
    );
}
