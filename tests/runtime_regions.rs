//! Security-region semantics of the `laminar` runtime: entry rules,
//! nesting, capability scoping, exception confinement, the two barrier
//! APIs, lazy VM→OS label sync, and multithreaded principals with
//! heterogeneous labels.

use laminar::{Labeled, Laminar, LaminarError, Principal, RegionParams};
use laminar_difc::{CapKind, CapSet, Capability, Label, LabelType, SecPair, Tag};
use laminar_os::{OpenMode, UserId};
use std::sync::Arc;

fn alice() -> (Arc<Laminar>, Principal) {
    let sys = Laminar::boot();
    sys.add_user(UserId(1), "alice");
    let p = sys.login(UserId(1)).unwrap();
    (sys, p)
}

fn tagged_params(t: Tag) -> RegionParams {
    RegionParams::new()
        .secrecy(Label::singleton(t))
        .grant(Capability::plus(t))
        .grant(Capability::minus(t))
}

#[test]
fn entry_rule_1_needs_capability_or_label() {
    let (_sys, p) = alice();
    let t = p.create_tag().unwrap();
    // With t+ entry succeeds.
    let params =
        RegionParams::new().secrecy(Label::singleton(t)).grant(Capability::plus(t));
    assert!(p.secure(&params, |_| Ok(()), |_| {}).is_ok());

    // A principal without the capability cannot enter.
    let stranger = p.spawn_thread(Some(CapSet::new())).unwrap();
    assert!(matches!(
        stranger.secure(&params, |_| Ok(()), |_| {}),
        Err(LaminarError::RegionEntry(_))
    ));
}

#[test]
fn entry_rule_2_region_caps_subset() {
    let (_sys, p) = alice();
    let t = p.create_tag().unwrap();
    let other = Tag::from_raw(424_242);
    let params = RegionParams::new().grant(Capability::plus(t)).grant(
        // A capability the thread does not hold.
        Capability::minus(other),
    );
    assert!(matches!(
        p.secure(&params, |_| Ok(()), |_| {}),
        Err(LaminarError::RegionEntry(_))
    ));
}

#[test]
fn labels_are_empty_outside_regions_and_restored_on_exit() {
    let (_sys, p) = alice();
    let t = p.create_tag().unwrap();
    assert!(p.current_labels().is_unlabeled());
    p.secure(
        &tagged_params(t),
        |g| {
            assert_eq!(g.current_label(LabelType::Secrecy), Label::singleton(t));
            Ok(())
        },
        |_| {},
    )
    .unwrap();
    assert!(p.current_labels().is_unlabeled());
    assert!(!p.in_region());
}

#[test]
fn nested_regions_restore_the_outer_context() {
    let (_sys, p) = alice();
    let a = p.create_tag().unwrap();
    let b = p.create_tag().unwrap();
    let outer = RegionParams::new()
        .secrecy(Label::from_tags([a, b]))
        .grant(Capability::plus(a))
        .grant(Capability::plus(b))
        .grant(Capability::minus(a));
    p.secure(
        &outer,
        |g| {
            let inner = RegionParams::new()
                .secrecy(Label::singleton(b))
                .grant(Capability::minus(a));
            // Inner entry: b ∈ SP, a- ⊆ CP ✓ (Fig. 4's L4).
            g.secure(
                &inner,
                |g2| {
                    assert_eq!(g2.current_label(LabelType::Secrecy), Label::singleton(b));
                    Ok(())
                },
                |_| {},
            )?;
            // Outer context restored.
            assert_eq!(g.current_label(LabelType::Secrecy), Label::from_tags([a, b]));
            Ok(())
        },
        |_| {},
    )
    .unwrap()
    .unwrap();
}

#[test]
fn figure5_implicit_flow_is_confined() {
    // The secure/catch program of Fig. 5: the attempted write of public
    // L never happens, the invariant-restoring catch runs, execution
    // continues, and code outside cannot distinguish H=true from false.
    let (_sys, p) = alice();
    let h = p.create_tag().unwrap();

    for h_value in [false, true] {
        let params =
            RegionParams::new().secrecy(Label::singleton(h)).grant(Capability::plus(h));
        let h_cell =
            p.secure(&params, |g| Ok(g.new_labeled(h_value)), |_| {}).unwrap().unwrap();
        let l_cell = Labeled::unlabeled(false);
        let mut catch_ran = false;

        let out = p
            .secure(
                &params,
                |g| {
                    let secret = h_cell.read(g, |v| *v)?;
                    if secret {
                        // Attempted implicit leak: write fails (region has
                        // secrecy; cell is public).
                        l_cell.write(g, |l| *l = true)?;
                    }
                    Ok(())
                },
                |_| catch_ran = true,
            )
            .unwrap();

        // L is untouched either way: no bit of H escaped.
        assert!(!l_cell.read_dyn(|v| *v).unwrap());
        // Whether the catch ran equals h_value — but that fact is only
        // visible to *this test* (the TCB); region code cannot export it.
        assert_eq!(catch_ran, h_value);
        assert_eq!(out.is_none(), h_value);
    }
}

#[test]
fn panics_inside_regions_are_confined() {
    let (_sys, p) = alice();
    let out = p
        .secure::<()>(&RegionParams::new(), |_| panic!("runtime exception"), |_| {})
        .unwrap();
    assert!(out.is_none());
    // The principal is fully usable afterwards.
    assert!(!p.in_region());
    assert_eq!(p.secure(&RegionParams::new(), |_| Ok(7), |_| {}).unwrap(), Some(7));
}

#[test]
fn catch_block_panics_are_also_confined() {
    let (_sys, p) = alice();
    let out = p
        .secure::<()>(
            &RegionParams::new(),
            |g| g.throw("first"),
            |_| panic!("catch panicked too"),
        )
        .unwrap();
    assert!(out.is_none());
    assert!(p.stats().exceptions_suppressed >= 2);
}

#[test]
fn static_barriers_check_labels() {
    let (_sys, p) = alice();
    let t = p.create_tag().unwrap();
    let cell =
        p.secure(&tagged_params(t), |g| Ok(g.new_labeled(41)), |_| {}).unwrap().unwrap();

    // Region carrying the label reads/writes fine.
    let v = p
        .secure(
            &tagged_params(t),
            |g| {
                cell.write(g, |v| *v += 1)?;
                cell.read(g, |v| *v)
            },
            |_| {},
        )
        .unwrap();
    assert_eq!(v, Some(42));

    // An unlabeled region cannot read it (suppressed).
    let out = p.secure(&RegionParams::new(), |g| cell.read(g, |v| *v), |_| {}).unwrap();
    assert!(out.is_none());
}

#[test]
fn dynamic_barriers_find_the_context_at_runtime() {
    let (_sys, p) = alice();
    let t = p.create_tag().unwrap();
    let cell =
        p.secure(&tagged_params(t), |g| Ok(g.new_labeled(5)), |_| {}).unwrap().unwrap();

    // Outside any region: denied.
    assert!(matches!(cell.read_dyn(|v| *v), Err(LaminarError::NotInRegion)));
    // Inside the right region: allowed, via the same call.
    let v = p.secure(&tagged_params(t), |_| cell.read_dyn(|v| *v), |_| {}).unwrap();
    assert_eq!(v, Some(5));
    assert!(p.stats().dynamic_dispatches > 0);
}

#[test]
fn integrity_regions_cannot_read_unendorsed_data() {
    let (_sys, p) = alice();
    let i = p.create_tag().unwrap();
    let plain = Labeled::unlabeled(1);
    let params =
        RegionParams::new().integrity(Label::singleton(i)).grant(Capability::plus(i));
    // Reading unendorsed data from a high-integrity region: suppressed.
    let out = p.secure(&params, |g| plain.read(g, |v| *v), |_| {}).unwrap();
    assert!(out.is_none());
    // Writing down is fine.
    let out = p.secure(&params, |g| plain.write(g, |v| *v = 2), |_| {}).unwrap();
    assert_eq!(out, Some(()));
}

#[test]
fn copy_and_label_requires_capabilities() {
    let (_sys, p) = alice();
    let t = p.create_tag().unwrap();
    let cell =
        p.secure(&tagged_params(t), |g| Ok(g.new_labeled(9)), |_| {}).unwrap().unwrap();

    // Without t-: declassification is rejected inside the region
    // (suppressed at the boundary).
    let no_minus =
        RegionParams::new().secrecy(Label::singleton(t)).grant(Capability::plus(t));
    let out = p
        .secure(
            &no_minus,
            |g| {
                g.copy_and_label(&cell, SecPair::unlabeled())?;
                Ok(())
            },
            |_| {},
        )
        .unwrap();
    assert!(out.is_none());

    // With t- it succeeds and the copy is public.
    let public = p
        .secure(
            &tagged_params(t),
            |g| g.copy_and_label(&cell, SecPair::unlabeled()),
            |_| {},
        )
        .unwrap()
        .unwrap();
    assert!(public.labels().is_unlabeled());
    assert_eq!(public.read_dyn(|v| *v).unwrap(), 9);
    // The original is untouched.
    assert!(!cell.labels().is_unlabeled());
}

#[test]
fn scoped_capability_drop_is_restored_global_is_not() {
    let (_sys, p) = alice();
    let t = p.create_tag().unwrap();

    // Scoped drop: gone inside, back outside.
    p.secure(
        &tagged_params(t),
        |g| {
            g.remove_capability(t, CapKind::Minus, false)?;
            assert!(!g.current_caps().can_remove(t));
            Ok(())
        },
        |_| {},
    )
    .unwrap()
    .unwrap();
    assert!(p.current_caps().can_remove(t));

    // Global drop: gone for good.
    p.secure(
        &tagged_params(t),
        |g| {
            g.remove_capability(t, CapKind::Minus, true)?;
            Ok(())
        },
        |_| {},
    )
    .unwrap()
    .unwrap();
    assert!(!p.current_caps().can_remove(t));
    assert!(p.current_caps().can_add(t));
}

#[test]
fn capabilities_gained_in_regions_persist_after_exit() {
    let (_sys, p) = alice();
    let gained = p
        .secure(&RegionParams::new(), |g| g.create_and_add_capability(), |_| {})
        .unwrap()
        .unwrap();
    // §4.4: "By default, a thread that gains a capability within a
    // security region retains the capability on exit".
    assert!(p.current_caps().can_add(gained));
    assert!(p.current_caps().can_remove(gained));
}

#[test]
fn lazy_label_sync_elides_syscall_free_regions() {
    let (_sys, p) = alice();
    let t = p.create_tag().unwrap();
    p.reset_stats();

    // No syscall: no kernel label traffic.
    p.secure(&tagged_params(t), |_| Ok(()), |_| {}).unwrap();
    assert_eq!(p.stats().os_syncs, 0);
    assert_eq!(p.stats().os_syncs_elided, 1);

    // With a syscall, exactly one sync happens.
    let fd = p.task().create("/tmp/pre.txt").unwrap(); // pre-create unlabeled? no — labels empty outside
    p.task().close(fd).unwrap();
    p.secure(
        &tagged_params(t),
        |g| {
            let os = g.os()?;
            // Kernel task now carries {S(t)}: writing the unlabeled file
            // is denied by the LSM — proving the sync took effect.
            let fd = os.open("/tmp/pre.txt", OpenMode::Write)?;
            let denied = os.write(fd, b"x").is_err();
            os.close(fd).ok();
            assert!(denied, "kernel must see the region's labels");
            Ok(())
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(p.stats().os_syncs, 1);

    // After exit the kernel task is unlabeled again.
    let fd = p.task().open("/tmp/pre.txt", OpenMode::Write).unwrap();
    p.task().write(fd, b"y").unwrap();
    p.task().close(fd).unwrap();
}

#[test]
fn heterogeneous_thread_labels_in_one_process() {
    // The workload OS-granularity DIFC cannot express: two threads of
    // one process simultaneously inside regions with different labels.
    let (_sys, p) = alice();
    let a = p.create_tag().unwrap();
    let b = p.create_tag().unwrap();
    let mut caps_a = CapSet::new();
    caps_a.grant_both(a);
    let mut caps_b = CapSet::new();
    caps_b.grant_both(b);
    let pa = p.spawn_thread(Some(caps_a)).unwrap();
    let pb = p.spawn_thread(Some(caps_b)).unwrap();

    let cell_a = pa
        .secure(&tagged_params(a), |g| Ok(Arc::new(g.new_labeled(1))), |_| {})
        .unwrap()
        .unwrap();
    let cell_b = pb
        .secure(&tagged_params(b), |g| Ok(Arc::new(g.new_labeled(2))), |_| {})
        .unwrap()
        .unwrap();

    let (cb, ca) = (Arc::clone(&cell_b), Arc::clone(&cell_a));
    let ha = std::thread::spawn(move || {
        pa.secure(
            &tagged_params(a),
            |g| {
                // Own data: yes. Other thread's: no (suppressed if tried).
                let v = ca.read(g, |v| *v)?;
                assert!(cb.read(g, |v| *v).is_err());
                Ok(v)
            },
            |_| {},
        )
        .unwrap()
    });
    let hb = std::thread::spawn(move || {
        pb.secure(&tagged_params(b), |g| cell_b.read(g, |v| *v), |_| {}).unwrap()
    });
    assert_eq!(ha.join().unwrap(), Some(1));
    assert_eq!(hb.join().unwrap(), Some(2));
}

#[test]
fn labeled_cell_creation_requires_conformant_labels() {
    let (_sys, p) = alice();
    let t = p.create_tag().unwrap();
    // A {S(t)} region cannot mint a *public* cell directly (write-down).
    let out = p
        .secure(
            &tagged_params(t),
            |g| {
                g.new_labeled_with(1, SecPair::unlabeled())?;
                Ok(())
            },
            |_| {},
        )
        .unwrap();
    assert!(out.is_none());
    // But it can mint a more-secret cell (classification).
    let u = p.create_tag().unwrap();
    let stronger = SecPair::secrecy_only(Label::from_tags([t, u]));
    let out = p
        .secure(
            &tagged_params(t),
            |g| {
                g.new_labeled_with(1, stronger.clone())?;
                Ok(())
            },
            |_| {},
        )
        .unwrap();
    assert_eq!(out, Some(()));
}
