//! # laminar-suite
//!
//! The workspace umbrella: hosts the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. Re-exports the
//! member crates for convenience.

#![forbid(unsafe_code)]

pub use laminar;
pub use laminar_apps;
pub use laminar_difc;
pub use laminar_os;
pub use laminar_vm;
